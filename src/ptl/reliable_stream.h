// Reusable framing/reliability component (ack-clocked go-back-N).
//
// Carved out of the Elan4 PTL so the NIC-specific code shrinks to RDMA/QDMA
// logic and other PTLs (TCP) can opt into the same window/ack machinery.
// One ReliableStream instance guards the sequenced frame stream to ONE peer
// endpoint: it assigns frame sequences, appends/verifies the CRC32C
// trailer, keeps the sent-frame log for retransmission, enforces in-order
// admission with duplicate suppression, and does cumulative-ack
// bookkeeping (LA-MPI heritage, see DESIGN.md).
//
// The owning PTL stays in charge of everything transport-specific, wired in
// through Hooks: how a frame reaches the wire, what CRC work costs, how the
// shared scan timers are armed, and how NACK/ack control frames are built.
// All counters land in a ReliableCounters block shared across the owner's
// streams so existing per-PTL stat accessors keep working.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "pml/header.h"
#include "sim/time.h"

namespace oqs::ptl {

// Protocol tuning, mirrored from the owner's option block.
struct ReliableTuning {
  // Max unacknowledged sequenced frames per peer; excess frames queue in a
  // per-peer backlog (history is never dropped).
  std::uint32_t send_window = 256;
  // Explicit-ack cadence: ack after this many admitted frames...
  int ack_every = 8;
  // ...or after this long, whichever comes first (delayed-ack timer).
  std::uint64_t ack_delay_ns = 40000;
  // Retransmit the window front after this long without ack progress.
  std::uint64_t retransmit_timeout_ns = 150000;
  // Timeout doubles on consecutive expiries up to this many times.
  int max_retransmit_backoff = 4;
  // Minimum gap between identical NACKs / duplicate re-acks.
  std::uint64_t nack_holdoff_ns = 30000;
  // Initial frame_seq value (both sides of a pairing must agree).
  std::uint16_t seq_start = 0;
};

// Shared across all streams of one PTL instance.
struct ReliableCounters {
  std::uint64_t frames_dropped = 0;   // bad CRC or out-of-sequence
  std::uint64_t retransmissions = 0;  // frames resent (NACK or timeout)
  std::uint64_t dup_frames = 0;       // duplicates suppressed
  std::uint64_t rtx_timeouts = 0;     // retransmission-timer expiries
  std::uint64_t acks_sent = 0;        // explicit ack frames
};

class ReliableStream {
 public:
  // Transport-specific plumbing supplied by the owning PTL. All callbacks
  // must outlive the stream (they typically capture the PTL and peer gid).
  struct Hooks {
    // Put one sealed frame on the wire; `recycle` is the owner's opaque
    // local-completion cookie for first transmissions (nullptr on resend).
    std::function<void(const std::vector<std::uint8_t>&, void*)> wire;
    // Charge host CRC compute time for `bytes`.
    std::function<void(std::size_t)> charge_crc;
    std::function<sim::Time()> now;
    // (Re)arm the owner's shared retransmission scan timer for `deadline`.
    std::function<void(sim::Time)> arm_rtx;
    // Arm the owner's shared delayed-ack timer.
    std::function<void()> arm_ack;
    // Emit a kNack control frame asking for this stream's rx_expected().
    std::function<void()> send_nack;
    // Emit an explicit cumulative-ack control frame to this peer.
    std::function<void()> send_ack;
    int node = 0;       // trace attribution
    std::string name;   // log attribution (owning PTL's name)
  };

  ReliableStream(const ReliableTuning& tuning, ReliableCounters& counters,
                 Hooks hooks)
      : tuning_(tuning), counters_(counters), hooks_(std::move(hooks)) {
    tx_seq_ = tuning_.seq_start;
    last_acked_ = tuning_.seq_start;
    rx_expected_ = static_cast<std::uint16_t>(tuning_.seq_start + 1);
    log_base_ = rx_expected_;
  }

  // ---- sender side ----
  // Piggyback the cumulative ack on an outgoing header (every frame to the
  // peer carries one, data or control).
  void stamp_ack(pml::MatchHeader& h);
  // Claim the next frame sequence (wire order must match claim order).
  std::uint16_t assign_seq() { return ++tx_seq_; }
  // Seal a built frame (CRC32C into its last 4 bytes, charging the CRC),
  // then post it — or backlog it if the send window is closed.
  void submit(std::vector<std::uint8_t>&& frame, void* recycle);
  // Cumulative-ack intake: prune the sent log through `ack_seq`, then post
  // backlogged frames into the opened window.
  void harvest_ack(std::uint16_t ack_seq);
  // Peer asked for a resend starting at `from` (go-back-N).
  void on_nack(std::uint16_t from);
  // Retransmission-timer scan step: resend the window front if the deadline
  // passed. Returns the next deadline to watch, or 0 when idle.
  sim::Time rtx_check(sim::Time now);
  // Unacked + backlogged sequenced frames (window occupancy).
  std::size_t window_in_use() const {
    return sent_log_.size() + tx_backlog_.size();
  }

  // ---- receiver side ----
  // Verify the trailer and enforce in-order admission; false = drop frame
  // (recovery control traffic already emitted through the hooks).
  bool admit(const pml::MatchHeader& hdr,
             const std::vector<std::uint8_t>& frame);
  // The peer frame sequence this stream will admit next (NACK cookie).
  std::uint16_t rx_expected() const { return rx_expected_; }
  // Admitted frames since the last ack left (delayed-ack bookkeeping).
  int unacked_rx() const { return unacked_rx_; }
  // True when the peer has admitted frames we have not acknowledged yet.
  bool ack_debt() const {
    return unacked_rx_ > 0 ||
           last_acked_ != static_cast<std::uint16_t>(rx_expected_ - 1);
  }

 private:
  // A built-but-unposted sequenced frame (window closed at build time).
  struct QueuedFrame {
    std::vector<std::uint8_t> frame;
    void* recycle = nullptr;
  };

  void drain_backlog();
  // Resend sent_log[offset..], up to `max_frames`, charging CRC like first
  // transmissions.
  void retransmit_from(std::size_t offset, std::size_t max_frames);
  void note_admitted();
  // Rate-limited NACK for rx_expected_ (one per loss event).
  void maybe_nack();

  const ReliableTuning& tuning_;
  ReliableCounters& counters_;
  Hooks hooks_;

  // Sender side: sent_log_ holds every posted-but-unacknowledged frame,
  // contiguous sequences [log_base_, log_base_ + sent_log_.size()); frames
  // built while the window is full wait in tx_backlog_ with their sequences
  // already assigned, so wire order always matches sequence order. Pruning
  // happens only on acknowledgement — never by size.
  std::uint16_t tx_seq_ = 0;    // last frame sequence assigned
  std::uint16_t log_base_ = 1;  // sequence of sent_log_.front()
  std::deque<std::vector<std::uint8_t>> sent_log_;
  std::deque<QueuedFrame> tx_backlog_;
  int rtx_backoff_ = 0;         // consecutive unproductive timeouts
  sim::Time rtx_deadline_ = 0;  // retransmit if no ack progress by then

  // Receiver side: cumulative-ack bookkeeping.
  std::uint16_t rx_expected_ = 1;  // next frame sequence accepted
  std::uint16_t last_acked_ = 0;   // last rx sequence acknowledged back
  int unacked_rx_ = 0;             // admitted frames since the last ack

  // Rate limiting (one recovery round per loss event, not a storm).
  std::uint16_t last_nack_seq_ = 0;
  sim::Time last_nack_time_ = 0;
  sim::Time last_reack_time_ = 0;
};

}  // namespace oqs::ptl
