#include "ptl/reliable_stream.h"

#include <algorithm>
#include <cstring>

#include "base/checksum.h"
#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::ptl {

void ReliableStream::stamp_ack(pml::MatchHeader& h) {
  // Cumulative ack rides on every frame to this peer, data or control.
  h.ack_seq = static_cast<std::uint16_t>(rx_expected_ - 1);
  last_acked_ = h.ack_seq;
  unacked_rx_ = 0;
}

void ReliableStream::submit(std::vector<std::uint8_t>&& frame, void* recycle) {
  const std::uint32_t crc = crc32c(frame.data(), frame.size() - 4);
  std::memcpy(frame.data() + frame.size() - 4, &crc, 4);
  hooks_.charge_crc(frame.size());
  if (sent_log_.size() >= tuning_.send_window || !tx_backlog_.empty()) {
    // Window closed: the frame (sequence already assigned) waits its turn.
    // It is posted in order by drain_backlog when acks open the window —
    // history is never dropped.
    tx_backlog_.push_back(QueuedFrame{std::move(frame), recycle});
    OQS_METRIC_INC("ptl.reliability.backlogged");
    return;
  }
  sent_log_.push_back(frame);
  if (sent_log_.size() == 1) {
    rtx_deadline_ = hooks_.now() + tuning_.retransmit_timeout_ns;
    hooks_.arm_rtx(rtx_deadline_);
  }
  hooks_.wire(frame, recycle);
}

void ReliableStream::harvest_ack(std::uint16_t ack_seq) {
  // Frames newly covered by this cumulative ack (int16 delta is wraparound-
  // safe for windows below 32768).
  auto n = static_cast<std::int16_t>(
      ack_seq - static_cast<std::uint16_t>(log_base_ - 1));
  if (n <= 0) return;  // stale or duplicate ack info
  bool progressed = false;
  while (n-- > 0 && !sent_log_.empty()) {
    sent_log_.pop_front();
    ++log_base_;
    progressed = true;
  }
  if (!progressed) return;
  OQS_METRIC_INC("ptl.reliability.acks_received");
  rtx_backoff_ = 0;
  rtx_deadline_ = hooks_.now() + tuning_.retransmit_timeout_ns;
  drain_backlog();
}

void ReliableStream::drain_backlog() {
  while (!tx_backlog_.empty() && sent_log_.size() < tuning_.send_window) {
    QueuedFrame qf = std::move(tx_backlog_.front());
    tx_backlog_.pop_front();
    sent_log_.push_back(qf.frame);
    hooks_.wire(qf.frame, qf.recycle);
  }
  if (!sent_log_.empty()) hooks_.arm_rtx(rtx_deadline_);
}

bool ReliableStream::admit(const pml::MatchHeader& hdr,
                           const std::vector<std::uint8_t>& frame) {
  hooks_.charge_crc(frame.size());
  std::uint32_t stored = 0;
  std::memcpy(&stored, frame.data() + frame.size() - 4, 4);
  if (crc32c(frame.data(), frame.size() - 4) != stored) {
    ++counters_.frames_dropped;
    OQS_METRIC_INC("ptl.reliability.frames_dropped");
    log::debug(hooks_.name, "frame ", hdr.frame_seq, " from gid ", hdr.src_gid,
               " failed CRC; NACKing ", rx_expected_);
    maybe_nack();
    return false;
  }
  const auto delta = static_cast<std::int16_t>(hdr.frame_seq - rx_expected_);
  if (delta == 0) {
    ++rx_expected_;
    note_admitted();
    return true;
  }
  if (delta > 0) {
    // Gap: an earlier frame is missing. Ask for a resend (go-back-N).
    ++counters_.frames_dropped;
    OQS_METRIC_INC("ptl.reliability.frames_dropped");
    maybe_nack();
    return false;
  }
  // Duplicate (retransmission overshoot or a wire-duplicated packet): drop
  // it, and re-ack so a sender stuck on a lost ack converges. Rate-limited —
  // a whole retransmitted window must not trigger a re-ack per frame.
  ++counters_.dup_frames;
  OQS_METRIC_INC("ptl.reliability.dup_frames");
  const sim::Time now = hooks_.now();
  if (now - last_reack_time_ >= tuning_.nack_holdoff_ns) {
    last_reack_time_ = now;
    hooks_.send_ack();
  }
  return false;
}

void ReliableStream::maybe_nack() {
  const std::uint16_t expected = rx_expected_;
  const sim::Time now = hooks_.now();
  // One NACK per loss event: a burst of out-of-order frames behind one hole
  // would otherwise trigger a quadratic retransmission storm.
  if (last_nack_seq_ == expected &&
      now - last_nack_time_ < tuning_.nack_holdoff_ns)
    return;
  last_nack_seq_ = expected;
  last_nack_time_ = now;
  hooks_.send_nack();
}

void ReliableStream::note_admitted() {
  if (++unacked_rx_ >= tuning_.ack_every)
    hooks_.send_ack();  // cadence ack now
  else
    hooks_.arm_ack();  // trailing frames get acked by the delay timer
}

void ReliableStream::retransmit_from(std::size_t offset,
                                     std::size_t max_frames) {
  // charge_crc/wire suspend the calling fiber (simulated CPU/post time), and
  // a concurrently delivered cumulative ack prunes the log front meanwhile —
  // so positions shift under the loop. Walk by frame sequence and re-resolve
  // against log_base_ after every suspension point; a frame acked mid-loop
  // is skipped, never read from a stale slot.
  std::uint16_t seq = static_cast<std::uint16_t>(log_base_ + offset);
  for (std::size_t sent = 0; sent < max_frames; ++seq) {
    auto idx = static_cast<std::int16_t>(seq - log_base_);
    if (idx < 0) continue;  // acked while we slept
    if (static_cast<std::size_t>(idx) >= sent_log_.size()) break;
    // Retransmissions are not free: the wire CRC is recomputed/verified by
    // the NIC path exactly like a first transmission.
    hooks_.charge_crc(sent_log_[static_cast<std::size_t>(idx)].size());
    idx = static_cast<std::int16_t>(seq - log_base_);  // shifted while charging?
    if (idx < 0) continue;
    if (static_cast<std::size_t>(idx) >= sent_log_.size()) break;
    ++counters_.retransmissions;
    OQS_METRIC_INC("ptl.reliability.retransmissions");
    OQS_TRACE_INSTANT(hooks_.node, "ptl", "reliability.retransmit", "seq", seq);
    hooks_.wire(sent_log_[static_cast<std::size_t>(idx)], nullptr);
    ++sent;
  }
}

void ReliableStream::on_nack(std::uint16_t from) {
  const auto offset = static_cast<std::int16_t>(from - log_base_);
  if (offset < 0) return;  // stale NACK: those frames were acked since
  if (static_cast<std::size_t>(offset) >= sent_log_.size()) {
    // The receiver asked past everything outstanding — every unacked frame
    // has already been resent or the NACK raced an ack. With ack-driven
    // pruning an unacked frame can never have left sent_log, so there is
    // nothing to recover here (the old size-based pruning made this a
    // permanent stall).
    return;
  }
  retransmit_from(static_cast<std::size_t>(offset), sent_log_.size());
  if (rtx_backoff_ < tuning_.max_retransmit_backoff) ++rtx_backoff_;
  rtx_deadline_ =
      hooks_.now() + (tuning_.retransmit_timeout_ns << rtx_backoff_);
  hooks_.arm_rtx(rtx_deadline_);
}

sim::Time ReliableStream::rtx_check(sim::Time now) {
  if (sent_log_.empty()) return 0;
  if (now >= rtx_deadline_) {
    // No ack progress for a full timeout: the window front (or the ack for
    // it) is lost. Go back and resend a prefix; the receiver's cumulative
    // ack recovers the rest.
    ++counters_.rtx_timeouts;
    OQS_METRIC_INC("ptl.reliability.rtx_timeouts");
    retransmit_from(0, 64);
    if (rtx_backoff_ < tuning_.max_retransmit_backoff) ++rtx_backoff_;
    rtx_deadline_ = now + (tuning_.retransmit_timeout_ns << rtx_backoff_);
  }
  return rtx_deadline_;
}

}  // namespace oqs::ptl
