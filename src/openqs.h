// openqs — Open MPI point-to-point over Quadrics/Elan4, reproduced in
// simulation. Umbrella header for the public API.
//
// Layers (bottom-up):
//   oqs::sim       discrete-event engine, fibers, CPU model
//   oqs::net       QsNetII fabric + management Ethernet
//   oqs::elan4     Elan4 NIC: QDMA, RDMA, chained events, MMU, capability
//   oqs::rte       run-time environment: OOB, registry, launch, spawn
//   oqs::dtype     MPI datatype engine (pack/unpack convertor)
//   oqs::pml       point-to-point management layer + PTL interface
//   oqs::ptl_elan4 the paper's PTL over Elan4
//   oqs::ptl_tcp   the reference TCP PTL
//   oqs::mpi       public MPI-2-style API (World/Communicator/Request)
//   oqs::tport     Quadrics Tport (NIC tag matching)
//   oqs::mpich     MPICH-QsNetII baseline on Tport
#pragma once

#include "base/params.h"
#include "base/status.h"
#include "dtype/datatype.h"
#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "mpi/hwcoll.h"
#include "mpi/mpi.h"
#include "mpi/window.h"
#include "mpich/mpich.h"
#include "pml/pml.h"
#include "ptl/elan4/ptl_elan4.h"
#include "ptl/tcp/ptl_tcp.h"
#include "rte/runtime.h"
#include "sim/engine.h"
#include "tport/tport.h"
